package mapping

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ddsketch-go/ddsketch/encoding"
)

// testAccuracies spans the range used in practice, from loose to tight.
var testAccuracies = []float64{0.25, 0.1, 0.05, 0.02, 0.01, 0.001, 1e-4}

type constructor struct {
	name string
	new  func(alpha float64) (IndexMapping, error)
}

var constructors = []constructor{
	{"Logarithmic", func(a float64) (IndexMapping, error) { return NewLogarithmic(a) }},
	{"LinearlyInterpolated", func(a float64) (IndexMapping, error) { return NewLinearlyInterpolated(a) }},
	{"QuadraticallyInterpolated", func(a float64) (IndexMapping, error) { return NewQuadraticallyInterpolated(a) }},
	{"CubicallyInterpolated", func(a float64) (IndexMapping, error) { return NewCubicallyInterpolated(a) }},
}

func mustMapping(t *testing.T, c constructor, alpha float64) IndexMapping {
	t.Helper()
	m, err := c.new(alpha)
	if err != nil {
		t.Fatalf("%s(%g): %v", c.name, alpha, err)
	}
	return m
}

// relErrTolerance gives a hair of slack over α for float rounding in the
// index and value computations.
func relErrTolerance(alpha float64) float64 { return alpha * (1 + 1e-9) }

func checkAccurate(t *testing.T, name string, m IndexMapping, v float64) {
	t.Helper()
	index := m.Index(v)
	estimate := m.Value(index)
	relErr := math.Abs(estimate-v) / v
	if relErr > relErrTolerance(m.RelativeAccuracy()) {
		t.Errorf("%s: value %g -> index %d -> estimate %g, relative error %g > alpha %g",
			name, v, index, estimate, relErr, m.RelativeAccuracy())
	}
}

func TestInvalidRelativeAccuracy(t *testing.T) {
	for _, c := range constructors {
		for _, alpha := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
			if _, err := c.new(alpha); err == nil {
				t.Errorf("%s(%g): want error", c.name, alpha)
			}
		}
	}
}

func TestAccuracyOnGrid(t *testing.T) {
	// A deterministic grid of values spanning ~30 orders of magnitude.
	values := []float64{
		1e-12, 3.5e-9, 1e-6, 8e-5, 0.001, 0.0123, 0.1, 0.5, 0.99, 1,
		1.00001, 2, math.E, 10, 100, 12345.6789, 1e6, 987654321, 1e12, 3.7e15,
	}
	for _, c := range constructors {
		for _, alpha := range testAccuracies {
			m := mustMapping(t, c, alpha)
			for _, v := range values {
				checkAccurate(t, c.name, m, v)
			}
		}
	}
}

func TestAccuracyNearPowersOfTwo(t *testing.T) {
	// The interpolated mappings stitch polynomial segments together at
	// powers of two; values straddling the seams are the risky inputs.
	for _, c := range constructors {
		m := mustMapping(t, c, 0.01)
		for e := -40; e <= 40; e++ {
			p := math.Ldexp(1, e)
			for _, v := range []float64{
				p, math.Nextafter(p, 0), math.Nextafter(p, math.Inf(1)),
				p * (1 - 1e-12), p * (1 + 1e-12),
			} {
				checkAccurate(t, c.name, m, v)
			}
		}
	}
}

func TestAccuracyAtIndexableBoundaries(t *testing.T) {
	for _, c := range constructors {
		for _, alpha := range []float64{0.1, 0.01} {
			m := mustMapping(t, c, alpha)
			for _, v := range []float64{
				m.MinIndexableValue(),
				m.MinIndexableValue() * 2,
				m.MaxIndexableValue(),
				m.MaxIndexableValue() / 2,
			} {
				checkAccurate(t, c.name, m, v)
			}
		}
	}
}

func TestAccuracyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, c := range constructors {
		for _, alpha := range []float64{0.05, 0.01} {
			m := mustMapping(t, c, alpha)
			for i := 0; i < 10000; i++ {
				// log-uniform over ~24 decades
				v := math.Exp(rng.Float64()*110 - 55)
				checkAccurate(t, c.name, m, v)
			}
		}
	}
}

func TestQuickAccuracy(t *testing.T) {
	for _, c := range constructors {
		m := mustMapping(t, c, 0.01)
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			v := math.Exp(rng.Float64()*80 - 40)
			index := m.Index(v)
			estimate := m.Value(index)
			return math.Abs(estimate-v)/v <= relErrTolerance(0.01)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestIndexIsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range constructors {
		m := mustMapping(t, c, 0.02)
		prev := math.Inf(-1)
		prevIndex := 0
		first := true
		for i := 0; i < 5000; i++ {
			v := math.Exp(rng.Float64()*60 - 30)
			index := m.Index(v)
			if !first {
				if (v > prev && index < prevIndex) || (v < prev && index > prevIndex) {
					t.Fatalf("%s: non-monotone: Index(%g)=%d vs Index(%g)=%d",
						c.name, prev, prevIndex, v, index)
				}
			}
			prev, prevIndex, first = v, index, false
		}
	}
}

func TestLowerBoundBracketsBucket(t *testing.T) {
	for _, c := range constructors {
		m := mustMapping(t, c, 0.01)
		for _, v := range []float64{1e-9, 0.004, 1, 17.3, 1e9} {
			i := m.Index(v)
			lo, hi := m.LowerBound(i), m.LowerBound(i+1)
			// Allow one ulp of slack at the boundaries.
			if v < lo*(1-1e-12) || v > hi*(1+1e-12) {
				t.Errorf("%s: value %g outside its bucket %d = (%g, %g]", c.name, v, i, lo, hi)
			}
			if m.Value(i) <= lo || m.Value(i) > hi*(1+1e-12) {
				t.Errorf("%s: Value(%d)=%g outside bucket (%g, %g]", c.name, i, m.Value(i), lo, hi)
			}
		}
	}
}

func TestLowerBoundRatioIsAtMostGamma(t *testing.T) {
	// The α guarantee requires consecutive bucket boundaries to be within
	// a factor γ; the interpolated mappings must have inflated their
	// multipliers enough.
	for _, c := range constructors {
		for _, alpha := range []float64{0.1, 0.01} {
			m := mustMapping(t, c, alpha)
			base := m.Index(1.0)
			for i := base - 2000; i < base+2000; i++ {
				ratio := m.LowerBound(i+1) / m.LowerBound(i)
				if ratio > m.Gamma()*(1+1e-9) {
					t.Fatalf("%s(alpha=%g): bucket %d ratio %.12f > gamma %.12f",
						c.name, alpha, i, ratio, m.Gamma())
				}
			}
		}
	}
}

func TestBucketCountInflation(t *testing.T) {
	// Interpolated mappings use more buckets to span the same range; the
	// overheads are fixed by the interpolation degree.
	span := func(m IndexMapping) float64 {
		return float64(m.Index(1e12) - m.Index(1e-12))
	}
	alpha := 0.01
	log := mustMapping(t, constructors[0], alpha)
	ref := span(log)
	cases := []struct {
		c        constructor
		overhead float64 // expected bucket-count multiplier vs logarithmic
	}{
		{constructors[1], 1 / math.Ln2},    // ≈1.4427
		{constructors[2], 0.75 / math.Ln2}, // ≈1.0820
		{constructors[3], 0.70 / math.Ln2}, // ≈1.0099
	}
	for _, tc := range cases {
		m := mustMapping(t, tc.c, alpha)
		got := span(m) / ref
		if math.Abs(got-tc.overhead) > 0.005 {
			t.Errorf("%s: bucket inflation %g, want ≈%g", tc.c.name, got, tc.overhead)
		}
	}
}

func TestGammaAndAccuracyAccessors(t *testing.T) {
	for _, c := range constructors {
		alpha := 0.02
		m := mustMapping(t, c, alpha)
		if m.RelativeAccuracy() != alpha {
			t.Errorf("%s: RelativeAccuracy = %g, want %g", c.name, m.RelativeAccuracy(), alpha)
		}
		wantGamma := (1 + alpha) / (1 - alpha)
		if math.Abs(m.Gamma()-wantGamma) > 1e-12 {
			t.Errorf("%s: Gamma = %g, want %g", c.name, m.Gamma(), wantGamma)
		}
	}
}

func TestEquals(t *testing.T) {
	for i, ci := range constructors {
		mi := mustMapping(t, ci, 0.01)
		if !mi.Equals(mi) {
			t.Errorf("%s: not equal to itself", ci.name)
		}
		same := mustMapping(t, ci, 0.01)
		if !mi.Equals(same) {
			t.Errorf("%s: not equal to same-alpha instance", ci.name)
		}
		other := mustMapping(t, ci, 0.02)
		if mi.Equals(other) {
			t.Errorf("%s: equal to different-alpha instance", ci.name)
		}
		for j, cj := range constructors {
			if i == j {
				continue
			}
			mj := mustMapping(t, cj, 0.01)
			if mi.Equals(mj) {
				t.Errorf("%s equal to %s", ci.name, cj.name)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, c := range constructors {
		for _, alpha := range []float64{0.1, 0.01, 0.007} {
			m := mustMapping(t, c, alpha)
			w := encoding.NewWriter(16)
			m.Encode(w)
			got, err := Decode(encoding.NewReader(w.Bytes()))
			if err != nil {
				t.Fatalf("%s: Decode: %v", c.name, err)
			}
			if !m.Equals(got) {
				t.Errorf("%s: decoded mapping %v not equal to original %v", c.name, got, m)
			}
			// Decoded mapping must index identically.
			for _, v := range []float64{0.001, 1, 42.5, 9e8} {
				if m.Index(v) != got.Index(v) {
					t.Errorf("%s: decoded Index(%g) = %d, want %d", c.name, v, got.Index(v), m.Index(v))
				}
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(encoding.NewReader(nil)); err == nil {
		t.Error("Decode(empty): want error")
	}
	w := encoding.NewWriter(8)
	w.Byte(99) // unknown tag
	w.Varfloat64(0.01)
	if _, err := Decode(encoding.NewReader(w.Bytes())); err == nil {
		t.Error("Decode(unknown tag): want error")
	}
}

func TestStringMentionsParameters(t *testing.T) {
	for _, c := range constructors {
		m := mustMapping(t, c, 0.01)
		if s := m.String(); len(s) == 0 {
			t.Errorf("%s: empty String()", c.name)
		}
	}
}

func TestIndexableRangeIsSane(t *testing.T) {
	for _, c := range constructors {
		m := mustMapping(t, c, 0.01)
		if m.MinIndexableValue() <= 0 {
			t.Errorf("%s: MinIndexableValue = %g, want > 0", c.name, m.MinIndexableValue())
		}
		if !(m.MaxIndexableValue() > m.MinIndexableValue()) {
			t.Errorf("%s: empty indexable range", c.name)
		}
		if math.IsInf(m.MaxIndexableValue(), 1) {
			t.Errorf("%s: MaxIndexableValue is infinite", c.name)
		}
	}
}

// TestInterpolationInverses verifies that LowerBound really is the
// inverse of the interpolation used by Index: Index(LowerBound(i)+ε)
// must be i for small ε.
func TestInterpolationInverses(t *testing.T) {
	for _, c := range constructors {
		m := mustMapping(t, c, 0.01)
		base := m.Index(1.0)
		for i := base - 500; i < base+500; i += 7 {
			lb := m.LowerBound(i)
			just := lb * (1 + 1e-10)
			if got := m.Index(just); got != i && got != i+1 {
				// Exactly at a boundary the index may round either way by
				// one ulp, but never further.
				t.Errorf("%s: Index(LowerBound(%d)(1+ε)) = %d", c.name, i, got)
			}
			mid := lb * (1 + m.RelativeAccuracy()/2)
			if got := m.Index(mid); got != i {
				t.Errorf("%s: Index(mid of bucket %d) = %d", c.name, i, got)
			}
		}
	}
}

// coarsen asserts that m is Coarsenable and coarsens it once.
func coarsen(t *testing.T, name string, m IndexMapping) IndexMapping {
	t.Helper()
	c, ok := m.(Coarsenable)
	if !ok {
		t.Fatalf("%s: %T does not implement Coarsenable", name, m)
	}
	next, err := c.Coarsen()
	if err != nil {
		t.Fatalf("%s: Coarsen: %v", name, err)
	}
	return next
}

// ceilDiv2 is ⌈i/2⌉ for any sign, the per-bucket fold of a uniform
// collapse (store.FoldPairwise computes it as (i+1)>>1).
func ceilDiv2(i int) int {
	if i > 0 {
		return (i + 1) / 2
	}
	return i / 2
}

// TestCoarsenIndexFoldIdentity is the Coarsenable contract: after each
// coarsening, coarse.Index(x) == ⌈fine.Index(x)/2⌉ for every indexable
// x — bit-exactly, because Coarsen halves the multiplier (exact in
// binary floating point) rather than rebuilding the mapping from α'.
func TestCoarsenIndexFoldIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range constructors {
		for _, alpha := range []float64{0.001, 0.01, 0.05} {
			fine := mustMapping(t, c, alpha)
			for epoch := 1; epoch <= 6; epoch++ {
				coarse := coarsen(t, c.name, fine)
				lo, hi := coarse.MinIndexableValue(), coarse.MaxIndexableValue()
				probe := func(v float64) {
					if v < lo || v > hi {
						return
					}
					if got, want := coarse.Index(v), ceilDiv2(fine.Index(v)); got != want {
						t.Fatalf("%s(α=%g) epoch %d: Index(%g) = %d, want ⌈%d/2⌉ = %d",
							c.name, alpha, epoch, v, got, fine.Index(v), want)
					}
				}
				probe(lo)
				probe(hi)
				probe(1)
				for i := 0; i < 2000; i++ {
					// Log-uniform over the whole indexable range, plus a
					// band near 1 where indexes change sign.
					probe(math.Exp(rng.Float64()*(math.Log(hi)-math.Log(lo)) + math.Log(lo)))
					probe(math.Exp(rng.NormFloat64()))
				}
				fine = coarse
			}
		}
	}
}

// TestCoarsenLineageAccessors: CollapseEpoch counts coarsenings and
// BaseMapping recovers the epoch-0 mapping; the coarsened accuracy
// follows α' = 2α/(1+α²) bit-exactly, and γ squares.
func TestCoarsenLineageAccessors(t *testing.T) {
	for _, c := range constructors {
		const alpha = 0.01
		base := mustMapping(t, c, alpha)
		m := base
		wantAlpha := alpha
		for epoch := 1; epoch <= 4; epoch++ {
			prevGamma := m.Gamma()
			m = coarsen(t, c.name, m)
			a := wantAlpha
			wantAlpha = 2 * a / (1 + a*a)
			if got := m.RelativeAccuracy(); got != wantAlpha {
				t.Fatalf("%s epoch %d: RelativeAccuracy = %v, want %v", c.name, epoch, got, wantAlpha)
			}
			if got, want := m.Gamma(), prevGamma*prevGamma; got != want {
				t.Fatalf("%s epoch %d: Gamma = %v, want %v", c.name, epoch, got, want)
			}
			cc := m.(Coarsenable)
			if got := cc.CollapseEpoch(); got != epoch {
				t.Fatalf("%s: CollapseEpoch = %d, want %d", c.name, got, epoch)
			}
			recovered := cc.BaseMapping()
			if !recovered.Equals(base) || recovered.RelativeAccuracy() != alpha {
				t.Fatalf("%s epoch %d: BaseMapping() = %v, want the epoch-0 %v", c.name, epoch, recovered, base)
			}
			if bc, ok := recovered.(Coarsenable); !ok || bc.CollapseEpoch() != 0 {
				t.Fatalf("%s epoch %d: BaseMapping() is not at epoch 0", c.name, epoch)
			}
		}
		// The base mapping of an uncoarsened mapping is itself.
		if got := base.(Coarsenable).BaseMapping(); got != base {
			t.Errorf("%s: BaseMapping() of an epoch-0 mapping = %v, want the mapping itself", c.name, got)
		}
	}
}

// TestCoarsenStopsBeforeAlphaOne: coarsening fails with ErrCannotCoarsen
// once the degraded accuracy would reach 1, instead of producing a
// mapping with no guarantee.
func TestCoarsenStopsBeforeAlphaOne(t *testing.T) {
	for _, c := range constructors {
		m := mustMapping(t, c, 0.5)
		var err error
		for epoch := 0; epoch < 64; epoch++ {
			var next IndexMapping
			next, err = m.(Coarsenable).Coarsen()
			if err != nil {
				break
			}
			if a := next.RelativeAccuracy(); !(a < 1) {
				t.Fatalf("%s: Coarsen produced α = %v ≥ 1 without failing", c.name, a)
			}
			m = next
		}
		if !errors.Is(err, ErrCannotCoarsen) {
			t.Errorf("%s: after 64 coarsenings err = %v, want ErrCannotCoarsen", c.name, err)
		}
	}
}

// TestCoarsenedAccuracy: a coarsened mapping honors its own degraded α'
// guarantee.
func TestCoarsenedAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, c := range constructors {
		m := mustMapping(t, c, 0.01)
		for epoch := 1; epoch <= 4; epoch++ {
			m = coarsen(t, c.name, m)
			for i := 0; i < 500; i++ {
				checkAccurate(t, fmt.Sprintf("%s epoch %d", c.name, epoch), m,
					math.Exp(rng.Float64()*400-200))
			}
		}
	}
}

// TestCoarsenedStringReportsLineage: String() on a coarsened mapping
// names the collapse epoch, the effective α′, and the base α.
func TestCoarsenedStringReportsLineage(t *testing.T) {
	for _, c := range constructors {
		m := coarsen(t, c.name, coarsen(t, c.name, mustMapping(t, c, 0.01)))
		s := m.String()
		for _, want := range []string{
			"collapseEpoch=2",
			"baseAlpha=0.01",
			fmt.Sprintf("alpha=%g", m.RelativeAccuracy()),
		} {
			if !strings.Contains(s, want) {
				t.Errorf("%s: String() = %q, want it to contain %q", c.name, s, want)
			}
		}
		if s0 := mustMapping(t, c, 0.01).String(); strings.Contains(s0, "collapseEpoch") {
			t.Errorf("%s: epoch-0 String() = %q mentions a collapse lineage", c.name, s0)
		}
	}
}

// TestCoarsenedEncodeDecodeRoundTrip: a coarsened mapping round-trips
// the wire bit-identically — the decoder re-derives it by coarsening the
// base epoch times, so Equals holds exactly and the lineage survives.
func TestCoarsenedEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, c := range constructors {
		for _, alpha := range []float64{0.01, 0.007} {
			m := mustMapping(t, c, alpha)
			for epoch := 1; epoch <= 3; epoch++ {
				m = coarsen(t, c.name, m)
				w := encoding.NewWriter(16)
				m.Encode(w)
				got, err := Decode(encoding.NewReader(w.Bytes()))
				if err != nil {
					t.Fatalf("%s(α=%g) epoch %d: Decode: %v", c.name, alpha, epoch, err)
				}
				if !got.Equals(m) {
					t.Fatalf("%s(α=%g) epoch %d: decoded %v does not equal original %v",
						c.name, alpha, epoch, got, m)
				}
				gc, ok := got.(Coarsenable)
				if !ok || gc.CollapseEpoch() != epoch {
					t.Fatalf("%s(α=%g): decoded mapping lost its lineage (epoch %d)", c.name, alpha, epoch)
				}
				if got.Gamma() != m.Gamma() || got.RelativeAccuracy() != m.RelativeAccuracy() {
					t.Fatalf("%s(α=%g) epoch %d: decoded parameters differ: %v vs %v",
						c.name, alpha, epoch, got, m)
				}
				for i := 0; i < 200; i++ {
					v := math.Exp(rng.Float64()*200 - 100)
					if got.Index(v) != m.Index(v) {
						t.Fatalf("%s(α=%g) epoch %d: decoded Index(%g) = %d, want %d",
							c.name, alpha, epoch, v, got.Index(v), m.Index(v))
					}
				}
			}
		}
	}
}

// TestDecodeCoarsenedErrors: hostile coarsened payloads are rejected —
// a coarsened tag with epoch 0, an epoch beyond the decode cap, and a
// lineage whose α' would reach 1.
func TestDecodeCoarsenedErrors(t *testing.T) {
	encode := func(tag byte, alpha float64, epoch uint64) []byte {
		w := encoding.NewWriter(16)
		w.Byte(tag | coarsenedFlag)
		w.Varfloat64(alpha)
		w.Uvarint(epoch)
		return w.Bytes()
	}
	for _, tc := range []struct {
		name string
		data []byte
		want error
	}{
		{"epoch zero", encode(typeLogarithmic, 0.01, 0), ErrInvalidCollapseEpoch},
		{"epoch beyond cap", encode(typeCubicallyInterpolated, 0.01, 10_000), ErrInvalidCollapseEpoch},
		{"alpha reaches one", encode(typeLinearlyInterpolated, 0.5, 60), ErrCannotCoarsen},
		{"truncated epoch", append([]byte{typeLogarithmic | coarsenedFlag}, encoding.NewWriter(8).Bytes()...), nil},
	} {
		_, err := Decode(encoding.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: Decode succeeded, want error", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}
