package mapping_test

import (
	"math"
	"testing"

	"github.com/ddsketch-go/ddsketch/mapping"
)

// FuzzMappingRoundTrip asserts Lemma 2's guarantee over arbitrary
// inputs, for every mapping kind: for any α and any value in the
// indexable range, Value(Index(v)) is within relative distance α of v,
// and buckets respect their declared lower bounds. This is the property
// the whole sketch's accuracy rests on; the CI fuzz smoke step exercises
// it alongside FuzzDecode.
func FuzzMappingRoundTrip(f *testing.F) {
	f.Add(0.01, 1.0, byte(0))
	f.Add(0.01, 1e-300, byte(1))
	f.Add(0.05, 12345.678, byte(2))
	f.Add(0.001, 1e300, byte(3))
	f.Add(0.5, 2.0, byte(0))
	f.Add(0.0078125, 0x1p-1021, byte(2)) // near the bottom of the normal range

	newMapping := func(alpha float64, kind byte) (mapping.IndexMapping, error) {
		switch kind % 4 {
		case 0:
			return mapping.NewLogarithmic(alpha)
		case 1:
			return mapping.NewLinearlyInterpolated(alpha)
		case 2:
			return mapping.NewQuadraticallyInterpolated(alpha)
		default:
			return mapping.NewCubicallyInterpolated(alpha)
		}
	}

	f.Fuzz(func(t *testing.T, alpha, value float64, kind byte) {
		m, err := newMapping(alpha, kind)
		if err != nil {
			// Invalid α must be rejected by every constructor, never
			// half-accepted.
			if alpha > 0 && alpha < 1 && !math.IsNaN(alpha) {
				t.Fatalf("kind %d rejected valid alpha %v: %v", kind%4, alpha, err)
			}
			return
		}
		if math.IsNaN(value) || math.IsInf(value, 0) ||
			value < m.MinIndexableValue() || value > m.MaxIndexableValue() {
			return
		}
		index := m.Index(value)
		back := m.Value(index)
		if rel := math.Abs(back-value) / value; rel > alpha*(1+1e-9)+1e-12 {
			t.Errorf("kind %d alpha %v: Value(Index(%g)) = %g, relative error %g exceeds alpha",
				kind%4, alpha, value, back, rel)
		}
		// The bucket's representative value lies within the bucket:
		// (LowerBound(index), LowerBound(index+1)], up to float slop.
		lo, hi := m.LowerBound(index), m.LowerBound(index+1)
		if back < lo*(1-1e-9) || back > hi*(1+1e-9) {
			t.Errorf("kind %d alpha %v: representative %g outside bucket (%g, %g]",
				kind%4, alpha, back, lo, hi)
		}
	})
}
