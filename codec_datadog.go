package ddsketch

import (
	"fmt"
	"math"
	"sort"

	"github.com/ddsketch-go/ddsketch/mapping"
	"github.com/ddsketch-go/ddsketch/store"
)

// This file implements the DataDog sketches-go proto3 wire format as a
// Codec, hand-rolled on the proto wire grammar so the module stays
// dependency-free. The schema (sketches-go pb/ddsketch.proto):
//
//	message DDSketch {
//	  IndexMapping mapping        = 1;  // len-delimited
//	  Store        positiveValues = 2;  // len-delimited
//	  Store        negativeValues = 3;  // len-delimited
//	  double       zeroCount      = 4;  // fixed64
//	}
//	message IndexMapping {
//	  double        gamma         = 1;  // fixed64
//	  double        indexOffset   = 2;  // fixed64
//	  Interpolation interpolation = 3;  // varint: NONE 0, LINEAR 1,
//	                                    //   QUADRATIC 2, CUBIC 3
//	}
//	message Store {
//	  map<sint32, double> binCounts               = 1;  // len-delimited entries
//	  repeated double     contiguousBinCounts     = 2 [packed = true];
//	  sint32              contiguousBinIndexOffset = 3;  // varint (zigzag)
//	}
//
// The interpolation enum maps one-to-one onto this module's four
// mappings: NONE ↔ LogarithmicMapping, LINEAR/QUADRATIC/CUBIC ↔ the
// interpolated mappings of the same degree.
//
// Lossiness rules (normative; docs/WIRE_FORMAT.md §DataDog):
//
//   - Uniform-collapse lineage flattens on export: only the *current*
//     (coarsened) γ is written, so a decoded sketch has collapse epoch
//     0, no uniform bin budget, and a freshly constructed mapping at
//     that γ. Bin counts and indexes are preserved exactly; quantile
//     estimates stay within the coarsened accuracy α' = (γ−1)/(γ+1).
//   - min/max/sum are not representable in the schema. Decoding
//     reconstructs min and max from the extreme buckets'
//     α-accurate representative values and sum as Σ count·Value(index),
//     so each is within the relative accuracy of the exact statistic.
//   - Store types flatten: both stores decode as unbounded DenseStores
//     regardless of the encoder's store policy (the span limit below
//     bounds memory instead).
//   - DataDog's reference mapping rounds log_γ to the nearest index
//     where this module takes the ceiling, so foreign payloads may
//     place values one bucket away from where this module would —
//     still within the γ-bucket relative-error guarantee. A non-zero
//     integral indexOffset is folded into the bin indexes; a
//     non-integral one is rejected.
const (
	ddFieldMapping   = 1
	ddFieldPositive  = 2
	ddFieldNegative  = 3
	ddFieldZeroCount = 4

	ddMappingFieldGamma         = 1
	ddMappingFieldIndexOffset   = 2
	ddMappingFieldInterpolation = 3

	ddStoreFieldBinCounts        = 1
	ddStoreFieldContiguousCounts = 2
	ddStoreFieldContiguousOffset = 3

	ddInterpolationNone      = 0
	ddInterpolationLinear    = 1
	ddInterpolationQuadratic = 2
	ddInterpolationCubic     = 3

	// Proto wire types. Groups (3, 4) are obsolete and rejected.
	ddWireVarint  = 0
	ddWireFixed64 = 1
	ddWireBytes   = 2
	ddWireFixed32 = 5

	// ddMaxIndexSpan bounds the index spread a decoded store may claim,
	// mirroring the native store decoder's limit: a hostile payload can
	// declare two distant sparse bins in a handful of bytes, and the
	// DenseStore the decoder builds allocates the full span.
	ddMaxIndexSpan = 1 << 22
	// ddMaxIndexOffset bounds the mapping-level indexOffset (and with
	// it the shifted bin indexes), mirroring the native decoder's
	// per-index magnitude limit.
	ddMaxIndexOffset = 1 << 40
)

// dataDogCodec implements Codec for the sketches-go proto3 format.
type dataDogCodec struct{}

// DataDogCodec is the proto3 wire format of DataDog's reference
// DDSketch implementation (sketches-go), the interchange format real
// DataDog agents emit. Encoding is deterministic (fields in schema
// order, bins in ascending index order) so identical sketches encode to
// identical bytes; decoding accepts any field order and skips unknown
// fields. See the lossiness rules above and docs/WIRE_FORMAT.md.
var DataDogCodec Codec = dataDogCodec{}

func (dataDogCodec) Name() string        { return "datadog" }
func (dataDogCodec) ContentType() string { return "application/x-protobuf" }

// Sniff accepts payloads opening with a tag byte the DDSketch message
// can legally start with: field 1–3 len-delimited (0x0a, 0x12, 0x1a) or
// field 4 fixed64 (0x21). All four are disjoint from the native magic's
// leading 'D' (0x44).
func (dataDogCodec) Sniff(data []byte) bool {
	if len(data) == 0 {
		return false
	}
	switch data[0] {
	case 0x0a, 0x12, 0x1a, 0x21:
		return true
	}
	return false
}

// --- proto wire-format primitives -----------------------------------
//
// These are the standard proto base-128 varints (up to 10 bytes for a
// uint64), deliberately distinct from the encoding package's 9-byte
// scheme used by the native format.

func ddAppendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func ddAppendTag(b []byte, field, wire int) []byte {
	return ddAppendUvarint(b, uint64(field)<<3|uint64(wire))
}

func ddAppendDouble(b []byte, field int, v float64) []byte {
	b = ddAppendTag(b, field, ddWireFixed64)
	bits := math.Float64bits(v)
	return append(b,
		byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
		byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
}

func ddAppendBytes(b []byte, field int, sub []byte) []byte {
	b = ddAppendTag(b, field, ddWireBytes)
	b = ddAppendUvarint(b, uint64(len(sub)))
	return append(b, sub...)
}

// ddZigzag32 encodes a signed index as proto sint32.
func ddZigzag32(v int32) uint64 {
	return uint64(uint32(v<<1) ^ uint32(v>>31))
}

// ddUnzigzag32 decodes a proto sint32 varint payload. Values beyond 32
// bits are rejected: no conforming encoder emits them for a sint32.
func ddUnzigzag32(u uint64) (int32, error) {
	if u > math.MaxUint32 {
		return 0, fmt.Errorf("sint32 varint %d overflows 32 bits", u)
	}
	v := uint32(u)
	return int32(v>>1) ^ -int32(v&1), nil
}

// ddReader is a cursor over a proto message body. All reads bound-check
// against the slice, so truncated or hostile payloads fail with an
// error, never a panic or an oversized allocation.
type ddReader struct {
	data []byte
	pos  int
}

func (r *ddReader) done() bool { return r.pos >= len(r.data) }

func (r *ddReader) uvarint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.pos >= len(r.data) {
			return 0, fmt.Errorf("truncated varint")
		}
		b := r.data[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			// The 10th byte may only contribute the top bit of a uint64.
			if shift == 63 && b > 1 {
				return 0, fmt.Errorf("varint overflows uint64")
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("varint longer than 10 bytes")
}

func (r *ddReader) fixed64() (uint64, error) {
	if len(r.data)-r.pos < 8 {
		return 0, fmt.Errorf("truncated fixed64")
	}
	b := r.data[r.pos:]
	r.pos += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

func (r *ddReader) double() (float64, error) {
	bits, err := r.fixed64()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// bytes reads a length-delimited field body. The declared length is
// validated against the remaining input before any slicing.
func (r *ddReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos) {
		return nil, fmt.Errorf("length %d exceeds remaining %d bytes", n, len(r.data)-r.pos)
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

// field reads the next field tag. Group wire types are rejected — the
// schema never uses them, and skipping them needs unbounded recursion.
func (r *ddReader) field() (num, wire int, err error) {
	tag, err := r.uvarint()
	if err != nil {
		return 0, 0, err
	}
	num, wire = int(tag>>3), int(tag&7)
	if num == 0 {
		return 0, 0, fmt.Errorf("field number 0")
	}
	switch wire {
	case ddWireVarint, ddWireFixed64, ddWireBytes, ddWireFixed32:
		return num, wire, nil
	default:
		return 0, 0, fmt.Errorf("unsupported wire type %d (field %d)", wire, num)
	}
}

// skip discards an unknown field's payload, preserving forward
// compatibility with schema additions.
func (r *ddReader) skip(wire int) error {
	switch wire {
	case ddWireVarint:
		_, err := r.uvarint()
		return err
	case ddWireFixed64:
		_, err := r.fixed64()
		return err
	case ddWireBytes:
		_, err := r.bytes()
		return err
	case ddWireFixed32:
		if len(r.data)-r.pos < 4 {
			return fmt.Errorf("truncated fixed32")
		}
		r.pos += 4
		return nil
	}
	return fmt.Errorf("unsupported wire type %d", wire)
}

// --- encoding ---------------------------------------------------------

// Encode serializes the sketch as a sketches-go DDSketch message.
// Output is deterministic: fields in schema order, bins ascending.
func (dataDogCodec) Encode(s *DDSketch) ([]byte, error) {
	mappingMsg, err := ddEncodeMapping(s.mapping)
	if err != nil {
		return nil, err
	}
	positive, err := ddEncodeStore(s.positive)
	if err != nil {
		return nil, fmt.Errorf("ddsketch: datadog codec: positive store: %w", err)
	}
	negative, err := ddEncodeStore(s.negative)
	if err != nil {
		return nil, fmt.Errorf("ddsketch: datadog codec: negative store: %w", err)
	}
	out := make([]byte, 0, len(mappingMsg)+len(positive)+len(negative)+16)
	out = ddAppendBytes(out, ddFieldMapping, mappingMsg)
	if len(positive) > 0 {
		out = ddAppendBytes(out, ddFieldPositive, positive)
	}
	if len(negative) > 0 {
		out = ddAppendBytes(out, ddFieldNegative, negative)
	}
	if s.zeroCount != 0 {
		out = ddAppendDouble(out, ddFieldZeroCount, s.zeroCount)
	}
	return out, nil
}

// ddEncodeMapping builds the IndexMapping message. The *current* γ is
// written — for a uniform-collapsed sketch that is the coarsened γ, and
// the collapse lineage is deliberately not representable (the
// documented flattening lossiness). indexOffset is always 0 for
// sketches this module built, so the field is omitted (proto3 default).
func ddEncodeMapping(m mapping.IndexMapping) ([]byte, error) {
	var interpolation int
	switch m.(type) {
	case *mapping.LogarithmicMapping:
		interpolation = ddInterpolationNone
	case *mapping.LinearlyInterpolatedMapping:
		interpolation = ddInterpolationLinear
	case *mapping.QuadraticallyInterpolatedMapping:
		interpolation = ddInterpolationQuadratic
	case *mapping.CubicallyInterpolatedMapping:
		interpolation = ddInterpolationCubic
	default:
		return nil, fmt.Errorf("ddsketch: datadog codec: unsupported mapping %v", m)
	}
	msg := ddAppendDouble(nil, ddMappingFieldGamma, m.Gamma())
	if interpolation != ddInterpolationNone {
		msg = ddAppendTag(msg, ddMappingFieldInterpolation, ddWireVarint)
		msg = ddAppendUvarint(msg, uint64(interpolation))
	}
	return msg, nil
}

// ddEncodeStore builds a Store message, or nil for an empty store. The
// denser of the two schema encodings is chosen deterministically:
// contiguousBinCounts (8 bytes per array slot) when the occupied span
// is at most twice the bin count, sparse binCounts map entries (13–17
// bytes per bin) otherwise. Bins are emitted in ascending index order
// either way, so equal stores encode to equal bytes regardless of the
// backing store type.
func ddEncodeStore(st store.Store) ([]byte, error) {
	type bin struct {
		index int
		count float64
	}
	var bins []bin
	st.ForEach(func(index int, count float64) bool {
		bins = append(bins, bin{index, count})
		return true
	})
	if len(bins) == 0 {
		return nil, nil
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].index < bins[j].index })
	lo, hi := bins[0].index, bins[len(bins)-1].index
	if lo < math.MinInt32 || hi > math.MaxInt32 {
		return nil, fmt.Errorf("bin index range [%d, %d] overflows sint32", lo, hi)
	}
	span := hi - lo + 1
	if span <= 2*len(bins) {
		// Contiguous: packed doubles indexed from contiguousBinIndexOffset.
		packed := make([]byte, 0, 8*span)
		next := 0
		for i := lo; i <= hi; i++ {
			c := 0.0
			if next < len(bins) && bins[next].index == i {
				c = bins[next].count
				next++
			}
			bits := math.Float64bits(c)
			packed = append(packed,
				byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
				byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
		}
		msg := ddAppendBytes(nil, ddStoreFieldContiguousCounts, packed)
		msg = ddAppendTag(msg, ddStoreFieldContiguousOffset, ddWireVarint)
		msg = ddAppendUvarint(msg, ddZigzag32(int32(lo)))
		return msg, nil
	}
	// Sparse: one map entry per bin, ascending.
	var msg []byte
	for _, b := range bins {
		entry := ddAppendTag(nil, 1, ddWireVarint)
		entry = ddAppendUvarint(entry, ddZigzag32(int32(b.index)))
		entry = ddAppendDouble(entry, 2, b.count)
		msg = ddAppendBytes(msg, ddStoreFieldBinCounts, entry)
	}
	return msg, nil
}

// --- decoding ---------------------------------------------------------

// ddBin is a validated (index, count) pair collected during store
// decoding, before any DenseStore allocation.
type ddBin struct {
	index int
	count float64
}

// Decode reconstructs a sketch from a sketches-go DDSketch message.
// Malformed, truncated, or hostile payloads fail with an error wrapping
// ErrInvalidEncoding; valid payloads from any conforming encoder are
// accepted regardless of field order or encoding choice.
func (dataDogCodec) Decode(data []byte) (*DDSketch, error) {
	r := &ddReader{data: data}
	var (
		m              mapping.IndexMapping
		indexOffset    int
		positiveBins   []ddBin
		negativeBins   []ddBin
		zeroCount      float64
		sawMapping     bool
		positiveFields [][]byte
		negativeFields [][]byte
	)
	for !r.done() {
		num, wire, err := r.field()
		if err != nil {
			return nil, fmt.Errorf("%w: datadog: %v", ErrInvalidEncoding, err)
		}
		switch {
		case num == ddFieldMapping && wire == ddWireBytes:
			body, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("%w: datadog: mapping: %v", ErrInvalidEncoding, err)
			}
			m, indexOffset, err = ddDecodeMapping(body)
			if err != nil {
				return nil, fmt.Errorf("%w: datadog: mapping: %v", ErrInvalidEncoding, err)
			}
			sawMapping = true
		case num == ddFieldPositive && wire == ddWireBytes:
			body, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("%w: datadog: positive store: %v", ErrInvalidEncoding, err)
			}
			positiveFields = append(positiveFields, body)
		case num == ddFieldNegative && wire == ddWireBytes:
			body, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("%w: datadog: negative store: %v", ErrInvalidEncoding, err)
			}
			negativeFields = append(negativeFields, body)
		case num == ddFieldZeroCount && wire == ddWireFixed64:
			v, err := r.double()
			if err != nil {
				return nil, fmt.Errorf("%w: datadog: zero count: %v", ErrInvalidEncoding, err)
			}
			zeroCount = v
		default:
			if err := r.skip(wire); err != nil {
				return nil, fmt.Errorf("%w: datadog: field %d: %v", ErrInvalidEncoding, num, err)
			}
		}
	}
	if !sawMapping {
		return nil, fmt.Errorf("%w: datadog: payload carries no index mapping", ErrInvalidEncoding)
	}
	if math.IsNaN(zeroCount) || math.IsInf(zeroCount, 0) || zeroCount < 0 {
		return nil, fmt.Errorf("%w: datadog: zero count %v", ErrInvalidEncoding, zeroCount)
	}
	// Non-contiguous encoders may split a store across repeated fields;
	// proto semantics merge them, so bins accumulate across bodies.
	for _, body := range positiveFields {
		var err error
		positiveBins, err = ddDecodeStore(body, positiveBins, indexOffset)
		if err != nil {
			return nil, fmt.Errorf("%w: datadog: positive store: %v", ErrInvalidEncoding, err)
		}
	}
	for _, body := range negativeFields {
		var err error
		negativeBins, err = ddDecodeStore(body, negativeBins, indexOffset)
		if err != nil {
			return nil, fmt.Errorf("%w: datadog: negative store: %v", ErrInvalidEncoding, err)
		}
	}
	positive, err := ddBuildStore(positiveBins)
	if err != nil {
		return nil, fmt.Errorf("%w: datadog: positive store: %v", ErrInvalidEncoding, err)
	}
	negative, err := ddBuildStore(negativeBins)
	if err != nil {
		return nil, fmt.Errorf("%w: datadog: negative store: %v", ErrInvalidEncoding, err)
	}
	s := &DDSketch{
		mapping:   m,
		positive:  positive,
		negative:  negative,
		zeroCount: zeroCount,
		min:       math.Inf(1),
		max:       math.Inf(-1),
	}
	if err := ddReconstructStatistics(s); err != nil {
		return nil, err
	}
	return s, nil
}

// ddDecodeMapping parses an IndexMapping message into one of the four
// mappings plus the integral index offset to fold into bin indexes.
func ddDecodeMapping(body []byte) (mapping.IndexMapping, int, error) {
	r := &ddReader{data: body}
	var (
		gamma         float64
		offset        float64
		interpolation uint64
	)
	for !r.done() {
		num, wire, err := r.field()
		if err != nil {
			return nil, 0, err
		}
		switch {
		case num == ddMappingFieldGamma && wire == ddWireFixed64:
			if gamma, err = r.double(); err != nil {
				return nil, 0, err
			}
		case num == ddMappingFieldIndexOffset && wire == ddWireFixed64:
			if offset, err = r.double(); err != nil {
				return nil, 0, err
			}
		case num == ddMappingFieldInterpolation && wire == ddWireVarint:
			if interpolation, err = r.uvarint(); err != nil {
				return nil, 0, err
			}
		default:
			if err := r.skip(wire); err != nil {
				return nil, 0, err
			}
		}
	}
	if math.IsNaN(gamma) || math.IsInf(gamma, 0) || gamma <= 1 {
		return nil, 0, fmt.Errorf("gamma %v out of range (need finite > 1)", gamma)
	}
	// This module's mappings have no index offset; an integral offset is
	// equivalent to shifting every bin index, so it is folded in below.
	// A fractional offset shifts bucket *boundaries* and has no lossless
	// translation, so it is rejected rather than silently mis-binned.
	if offset != math.Trunc(offset) || math.IsNaN(offset) ||
		offset > ddMaxIndexOffset || offset < -ddMaxIndexOffset {
		return nil, 0, fmt.Errorf("index offset %v unsupported (need integral, |offset| ≤ 2^40)", offset)
	}
	alpha := (gamma - 1) / (gamma + 1)
	var (
		m   mapping.IndexMapping
		err error
	)
	switch interpolation {
	case ddInterpolationNone:
		m, err = mapping.NewLogarithmic(alpha)
	case ddInterpolationLinear:
		m, err = mapping.NewLinearlyInterpolated(alpha)
	case ddInterpolationQuadratic:
		m, err = mapping.NewQuadraticallyInterpolated(alpha)
	case ddInterpolationCubic:
		m, err = mapping.NewCubicallyInterpolated(alpha)
	default:
		return nil, 0, fmt.Errorf("unknown interpolation %d", interpolation)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("gamma %v: %v", gamma, err)
	}
	return m, int(offset), nil
}

// ddDecodeStore parses one Store message body, appending validated bins
// (shifted by -indexOffset) to dst. Counts must be finite and
// non-negative; zero counts are skipped, as proto3 encoders emit them
// only as contiguous-run padding. Repeated contiguousBinCounts fields
// concatenate into one run (proto packed-repeated semantics), and the
// run's contiguousBinIndexOffset may appear anywhere in the message, so
// contiguous bins resolve to indexes only at end of message.
func ddDecodeStore(body []byte, dst []ddBin, indexOffset int) ([]ddBin, error) {
	r := &ddReader{data: body}
	var (
		contiguous       []float64
		contiguousOffset int32
	)
	for !r.done() {
		num, wire, err := r.field()
		if err != nil {
			return nil, err
		}
		switch {
		case num == ddStoreFieldBinCounts && wire == ddWireBytes:
			entry, err := r.bytes()
			if err != nil {
				return nil, err
			}
			index, count, err := ddDecodeMapEntry(entry)
			if err != nil {
				return nil, err
			}
			if err := ddCheckCount(count); err != nil {
				return nil, err
			}
			if count > 0 {
				dst = append(dst, ddBin{int(index) - indexOffset, count})
			}
		case num == ddStoreFieldContiguousCounts && wire == ddWireBytes:
			packed, err := r.bytes()
			if err != nil {
				return nil, err
			}
			if len(packed)%8 != 0 {
				return nil, fmt.Errorf("packed double run of %d bytes (need multiple of 8)", len(packed))
			}
			if len(contiguous)+len(packed)/8 > ddMaxIndexSpan {
				return nil, fmt.Errorf("contiguous run of %d bins exceeds span limit %d",
					len(contiguous)+len(packed)/8, ddMaxIndexSpan)
			}
			for i := 0; i+8 <= len(packed); i += 8 {
				bits := uint64(packed[i]) | uint64(packed[i+1])<<8 | uint64(packed[i+2])<<16 |
					uint64(packed[i+3])<<24 | uint64(packed[i+4])<<32 | uint64(packed[i+5])<<40 |
					uint64(packed[i+6])<<48 | uint64(packed[i+7])<<56
				count := math.Float64frombits(bits)
				if err := ddCheckCount(count); err != nil {
					return nil, err
				}
				contiguous = append(contiguous, count)
			}
		case num == ddStoreFieldContiguousOffset && wire == ddWireVarint:
			u, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if contiguousOffset, err = ddUnzigzag32(u); err != nil {
				return nil, err
			}
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	for i, count := range contiguous {
		if count > 0 {
			dst = append(dst, ddBin{int(contiguousOffset) + i - indexOffset, count})
		}
	}
	return dst, nil
}

// ddDecodeMapEntry parses one binCounts map entry: {sint32 key = 1,
// double value = 2}. Proto map entries may omit either field (zero
// default) and the decoder accepts any order.
func ddDecodeMapEntry(entry []byte) (int32, float64, error) {
	r := &ddReader{data: entry}
	var (
		key   int32
		value float64
	)
	for !r.done() {
		num, wire, err := r.field()
		if err != nil {
			return 0, 0, err
		}
		switch {
		case num == 1 && wire == ddWireVarint:
			u, err := r.uvarint()
			if err != nil {
				return 0, 0, err
			}
			if key, err = ddUnzigzag32(u); err != nil {
				return 0, 0, err
			}
		case num == 2 && wire == ddWireFixed64:
			if value, err = r.double(); err != nil {
				return 0, 0, err
			}
		default:
			if err := r.skip(wire); err != nil {
				return 0, 0, err
			}
		}
	}
	return key, value, nil
}

// ddCheckCount rejects the count values no encoder legitimately emits.
func ddCheckCount(count float64) error {
	if math.IsNaN(count) || math.IsInf(count, 0) || count < 0 {
		return fmt.Errorf("bin count %v (need finite ≥ 0)", count)
	}
	return nil
}

// ddBuildStore validates the collected bins' overall shape and builds
// the DenseStore — validation first, so a hostile payload cannot force
// a huge allocation before being rejected.
func ddBuildStore(bins []ddBin) (store.Store, error) {
	st := store.NewDenseStore()
	if len(bins) == 0 {
		return st, nil
	}
	lo, hi := bins[0].index, bins[0].index
	for _, b := range bins[1:] {
		if b.index < lo {
			lo = b.index
		}
		if b.index > hi {
			hi = b.index
		}
	}
	if lo < -ddMaxIndexOffset || hi > ddMaxIndexOffset {
		return nil, fmt.Errorf("bucket index out of range [%d, %d]", lo, hi)
	}
	if hi-lo > ddMaxIndexSpan {
		return nil, fmt.Errorf("index span [%d, %d] too wide", lo, hi)
	}
	for _, b := range bins {
		st.AddWithCount(b.index, b.count)
	}
	return st, nil
}

// ddReconstructStatistics fills in the statistics the DataDog schema
// cannot carry: min and max from the extreme buckets' representative
// values, sum as Σ count·Value(index). Each is within the mapping's
// relative accuracy of the exact statistic — which keeps every
// quantile estimate of the decoded sketch within α, since the
// statistics only participate as the output clamp. Non-finite
// reconstructions (buckets beyond the mapping's indexable range) are
// rejected, mirroring the native decoder's hostile-statistics checks.
func ddReconstructStatistics(s *DDSketch) error {
	m := s.mapping
	sum := 0.0
	s.positive.ForEach(func(index int, count float64) bool {
		sum += count * m.Value(index)
		return true
	})
	s.negative.ForEach(func(index int, count float64) bool {
		sum -= count * m.Value(index)
		return true
	})
	if s.zeroCount+s.positive.TotalCount()+s.negative.TotalCount() > 0 {
		// min: most negative value first, then zero, then smallest positive.
		switch {
		case s.negative.TotalCount() > 0:
			maxIdx, err := s.negative.MaxIndex()
			if err != nil {
				return fmt.Errorf("%w: datadog: %v", ErrInvalidEncoding, err)
			}
			s.min = -m.Value(maxIdx)
		case s.zeroCount > 0:
			s.min = 0
		default:
			minIdx, err := s.positive.MinIndex()
			if err != nil {
				return fmt.Errorf("%w: datadog: %v", ErrInvalidEncoding, err)
			}
			s.min = m.Value(minIdx)
		}
		switch {
		case s.positive.TotalCount() > 0:
			maxIdx, err := s.positive.MaxIndex()
			if err != nil {
				return fmt.Errorf("%w: datadog: %v", ErrInvalidEncoding, err)
			}
			s.max = m.Value(maxIdx)
		case s.zeroCount > 0:
			s.max = 0
		default:
			minIdx, err := s.negative.MinIndex()
			if err != nil {
				return fmt.Errorf("%w: datadog: %v", ErrInvalidEncoding, err)
			}
			s.max = -m.Value(minIdx)
		}
		if math.IsNaN(sum) || math.IsInf(sum, 0) ||
			math.IsNaN(s.min) || math.IsInf(s.min, 0) ||
			math.IsNaN(s.max) || math.IsInf(s.max, 0) || s.min > s.max {
			return fmt.Errorf("%w: datadog: unreconstructable statistics (min %v, max %v, sum %v)",
				ErrInvalidEncoding, s.min, s.max, sum)
		}
	}
	s.sum = sum
	return nil
}
