package ddsketch_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/ddsketch-go/ddsketch"
	"github.com/ddsketch-go/ddsketch/internal/exact"
	"github.com/ddsketch-go/ddsketch/internal/paperalgo"
)

// TestCrossValidateAgainstPaperPseudocode checks the production sketch
// against the literal transcription of the paper's pseudocode
// (internal/paperalgo): same γ, same bucket rule, so on positive data
// the two must return (numerically) the same quantile estimates.
func TestCrossValidateAgainstPaperPseudocode(t *testing.T) {
	const alpha = 0.01
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		production, err := ddsketch.New(alpha)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := paperalgo.New(alpha)
		if err != nil {
			t.Fatal(err)
		}
		values := make([]float64, 5000)
		for i := range values {
			values[i] = math.Exp(rng.NormFloat64() * 4)
			if err := production.Add(values[i]); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Insert(values[i]); err != nil {
				t.Fatal(err)
			}
		}
		sort.Float64s(values)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			got, err1 := production.Quantile(q)
			want, err2 := oracle.Quantile(q)
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d q=%g: %v %v", seed, q, err1, err2)
			}
			// The implementations compute γ^i via different float paths;
			// identical buckets agree to ~1e-12. A value sitting exactly
			// on a bucket boundary may be indexed into either neighbor,
			// in which case both estimates must still be α-accurate.
			if exact.RelativeError(got, want) > 1e-9 {
				exactQ := exact.Quantile(values, q)
				if exact.RelativeError(got, exactQ) > alpha*(1+1e-9) ||
					exact.RelativeError(want, exactQ) > alpha*(1+1e-9) {
					t.Errorf("seed %d q=%g: production %g vs pseudocode %g (exact %g)",
						seed, q, got, want, exactQ)
				}
			}
		}
		if got, want := production.Count(), oracle.Count(); got != want {
			t.Errorf("seed %d: counts %g vs %g", seed, got, want)
		}
	}
}

// TestCrossValidateBucketContents compares the bucket multisets: the
// production positive store and the pseudocode bins must hold identical
// counts at identical indexes (up to boundary-value index ties).
func TestCrossValidateBucketContents(t *testing.T) {
	const alpha = 0.02
	rng := rand.New(rand.NewSource(42))
	production, _ := ddsketch.New(alpha)
	oracle, _ := paperalgo.New(alpha)
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.NormFloat64() * 3)
		_ = production.Add(v)
		_ = oracle.Insert(v)
	}
	oracleBins := oracle.Bins()
	// Reconstruct the production sketch's positive bins through ForEach:
	// representative values map back to indexes via the oracle's rule.
	productionTotal := 0.0
	mismatched := 0.0
	production.ForEach(func(value, count float64) bool {
		productionTotal += count
		i := int(math.Ceil(math.Log(value) / math.Log(oracle.Gamma())))
		if oracleBins[i] != count {
			mismatched += count
		}
		return true
	})
	if productionTotal != oracle.Count() {
		t.Fatalf("total weights differ: %g vs %g", productionTotal, oracle.Count())
	}
	// Boundary-value index ties may shift a small fraction of weight by
	// one bucket; the bulk must match exactly.
	if mismatched/productionTotal > 0.01 {
		t.Errorf("%.2f%% of weight in mismatched buckets", 100*mismatched/productionTotal)
	}
}
