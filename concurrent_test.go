package ddsketch

import (
	"math"
	"sync"
	"testing"
)

func newConcurrent(t *testing.T) *Concurrent {
	t.Helper()
	base, err := NewCollapsing(0.01, 2048)
	if err != nil {
		t.Fatal(err)
	}
	return NewConcurrent(base)
}

func TestConcurrentBasicOperations(t *testing.T) {
	c := newConcurrent(t)
	if !c.IsEmpty() {
		t.Error("new concurrent sketch not empty")
	}
	if err := c.Add(5); err != nil {
		t.Fatal(err)
	}
	if err := c.AddWithCount(10, 3); err != nil {
		t.Fatal(err)
	}
	if got := c.Count(); got != 4 {
		t.Errorf("Count = %g", got)
	}
	if v, err := c.Quantile(1); err != nil || math.Abs(v-10)/10 > 0.01 {
		t.Errorf("Quantile(1) = (%g, %v)", v, err)
	}
	if vs, err := c.Quantiles([]float64{0, 1}); err != nil || len(vs) != 2 {
		t.Errorf("Quantiles = (%v, %v)", vs, err)
	}
	if min, err := c.Min(); err != nil || min != 5 {
		t.Errorf("Min = (%g, %v)", min, err)
	}
	if max, err := c.Max(); err != nil || max != 10 {
		t.Errorf("Max = (%g, %v)", max, err)
	}
	if sum, err := c.Sum(); err != nil || sum != 35 {
		t.Errorf("Sum = (%g, %v)", sum, err)
	}
	if avg, err := c.Avg(); err != nil || avg != 8.75 {
		t.Errorf("Avg = (%g, %v)", avg, err)
	}
	if err := c.Delete(5); err != nil {
		t.Fatal(err)
	}
	if got := c.Count(); got != 3 {
		t.Errorf("Count after delete = %g", got)
	}
}

func TestConcurrentParallelAddsAndQueries(t *testing.T) {
	c := newConcurrent(t)
	const writers = 8
	const perWriter = 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				if err := c.Add(float64(w*perWriter + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers must never observe an inconsistent state.
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for i := 0; i < 200; i++ {
				if c.IsEmpty() {
					continue
				}
				if _, err := c.Quantile(0.5); err != nil && err != ErrEmptySketch {
					t.Error(err)
					return
				}
				_ = c.Count()
			}
		}()
	}
	wg.Wait()
	rg.Wait()
	if got := c.Count(); got != writers*perWriter {
		t.Errorf("Count = %g, want %d", got, writers*perWriter)
	}
}

func TestConcurrentFlush(t *testing.T) {
	c := newConcurrent(t)
	for i := 1; i <= 100; i++ {
		_ = c.Add(float64(i))
	}
	snapshot := c.Flush()
	if snapshot.Count() != 100 {
		t.Errorf("flushed count = %g", snapshot.Count())
	}
	if !c.IsEmpty() {
		t.Error("sketch not empty after Flush")
	}
	// The flushed sketch is independent of the live one.
	_ = c.Add(7)
	if snapshot.Count() != 100 {
		t.Error("flush snapshot aliased to live sketch")
	}
}

func TestConcurrentParallelFlushes(t *testing.T) {
	c := newConcurrent(t)
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0.0
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				if err := c.Add(float64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// A flusher races the writers; no weight may be lost or duplicated.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			snap := c.Flush()
			mu.Lock()
			total += snap.Count()
			mu.Unlock()
		}
	}()
	wg.Wait()
	total += c.Flush().Count()
	if total != writers*perWriter {
		t.Errorf("total flushed weight = %g, want %d", total, writers*perWriter)
	}
}

func TestConcurrentSnapshotAndEncode(t *testing.T) {
	c := newConcurrent(t)
	_ = c.Add(1)
	_ = c.Add(2)
	snap := c.Snapshot()
	if snap.Count() != 2 {
		t.Errorf("snapshot count = %g", snap.Count())
	}
	if c.Count() != 2 {
		t.Error("Snapshot must not clear the sketch")
	}
	decoded, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Count() != 2 {
		t.Errorf("decoded count = %g", decoded.Count())
	}
}

func TestConcurrentMergeWith(t *testing.T) {
	c := newConcurrent(t)
	_ = c.Add(1)
	other, _ := NewCollapsing(0.01, 2048)
	_ = other.Add(2)
	if err := c.MergeWith(other); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 2 {
		t.Errorf("Count = %g", c.Count())
	}
	incompatible, _ := NewCollapsing(0.05, 2048)
	if err := c.MergeWith(incompatible); err == nil {
		t.Error("merge with incompatible sketch: want error")
	}
}
