package ddsketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/ddsketch-go/ddsketch/internal/exact"
	"github.com/ddsketch-go/ddsketch/mapping"
	"github.com/ddsketch-go/ddsketch/store"
)

func TestReweight(t *testing.T) {
	s, _ := New(0.01)
	_ = s.Add(10)
	_ = s.Add(-5)
	_ = s.Add(0)
	if err := s.Reweight(3); err != nil {
		t.Fatal(err)
	}
	if got := s.Count(); got != 9 {
		t.Errorf("Count after Reweight = %g, want 9", got)
	}
	if got := s.ZeroCount(); got != 3 {
		t.Errorf("ZeroCount after Reweight = %g, want 3", got)
	}
	sum, _ := s.Sum()
	if got, want := sum, (10.0-5.0)*3; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum after Reweight = %g, want %g", got, want)
	}
	// Quantiles are unchanged: reweighting scales the whole distribution.
	v, err := s.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-10)/10 > 0.01 {
		t.Errorf("Quantile(1) after Reweight = %g", v)
	}
}

func TestReweightErrors(t *testing.T) {
	s, _ := New(0.01)
	_ = s.Add(1)
	for _, w := range []float64{0, -1, math.NaN()} {
		if err := s.Reweight(w); err == nil {
			t.Errorf("Reweight(%g): want error", w)
		}
	}
	if err := s.Reweight(1); err != nil {
		t.Errorf("Reweight(1): %v", err)
	}
}

func TestReweightTimeDecay(t *testing.T) {
	// The use case: exponential decay across intervals. After many
	// intervals, the old interval's weight decays geometrically.
	rolling, _ := New(0.01)
	for interval := 0; interval < 10; interval++ {
		if !rolling.IsEmpty() {
			if err := rolling.Reweight(0.5); err != nil {
				t.Fatal(err)
			}
		}
		batch, _ := New(0.01)
		for i := 0; i < 1000; i++ {
			_ = batch.Add(float64(interval + 1)) // interval's signature value
		}
		if err := rolling.MergeWith(batch); err != nil {
			t.Fatal(err)
		}
	}
	// The latest interval dominates: the median must be the latest value.
	v, err := rolling.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-10)/10 > 0.01 {
		t.Errorf("decayed median = %g, want ≈10", v)
	}
}

func TestQuickReweightPreservesAccuracy(t *testing.T) {
	// After Reweight(w), every value carries weight w; the sketch's
	// quantile semantics select the first item whose cumulative weight
	// exceeds q·(W−1), and the estimate must be α-accurate for exactly
	// that item.
	const alpha = 0.02
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 0.1 + float64(wRaw)/64 // w ∈ [0.1, 4.1)
		s, _ := New(alpha)
		n := 200
		values := make([]float64, n)
		for i := range values {
			values[i] = math.Exp(rng.NormFloat64() * 2)
			_ = s.Add(values[i])
		}
		sort.Float64s(values)
		if err := s.Reweight(w); err != nil {
			return false
		}
		for _, q := range []float64{0.1, 0.5, 0.9} {
			got, err := s.Quantile(q)
			if err != nil {
				return false
			}
			// First 1-based item position k with k·w > q·(w·n − 1). When
			// q·(W−1) lands exactly on a cumulative-weight boundary, float
			// rounding legitimately selects either neighbor, so accept an
			// α-accurate match for k−1, k, or k+1.
			k := int(math.Floor(q*(w*float64(n)-1)/w)) + 1
			ok := false
			for _, kk := range []int{k - 1, k, k + 1} {
				if kk < 1 || kk > n {
					continue
				}
				if exact.RelativeError(got, values[kk-1]) <= alpha*(1+1e-6) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChangeMapping(t *testing.T) {
	s, _ := New(0.01)
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 5000)
	for i := range values {
		values[i] = math.Exp(rng.NormFloat64() * 2)
		_ = s.Add(values[i])
	}
	_ = s.Add(0)
	_ = s.Add(-3)
	values = append(values, 0, -3)

	newMapping, err := mapping.NewLinearlyInterpolated(0.02)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.ChangeMapping(newMapping, store.DenseStoreProvider(), store.DenseStoreProvider(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != s.Count() {
		t.Errorf("count after ChangeMapping = %g, want %g", out.Count(), s.Count())
	}
	// Combined error bound: α_old + α_new (plus slack for re-binning).
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got, err := out.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.Quantile(sorted, q)
		if want == 0 {
			continue
		}
		if relErr := math.Abs(got-want) / math.Abs(want); relErr > 0.01+0.02+0.001 {
			t.Errorf("q=%g: rel err %g after ChangeMapping", q, relErr)
		}
	}
}

func TestChangeMappingWithScaleFactor(t *testing.T) {
	s, _ := New(0.01)
	for i := 1; i <= 1000; i++ {
		_ = s.Add(float64(i)) // seconds
	}
	newMapping, _ := mapping.NewLogarithmic(0.01)
	// Convert to milliseconds.
	out, err := s.ChangeMapping(newMapping, store.DenseStoreProvider(), store.DenseStoreProvider(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	v, err := out.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-500000)/500000 > 0.021 {
		t.Errorf("scaled median = %g, want ≈500000", v)
	}
	min, _ := out.Min()
	if math.Abs(min-1000) > 1e-9 {
		t.Errorf("scaled min = %g, want 1000", min)
	}
	sum, _ := out.Sum()
	if math.Abs(sum-500500*1000)/5.005e8 > 1e-9 {
		t.Errorf("scaled sum = %g", sum)
	}
}

func TestChangeMappingErrors(t *testing.T) {
	s, _ := New(0.01)
	_ = s.Add(1)
	newMapping, _ := mapping.NewLogarithmic(0.01)
	for _, factor := range []float64{0, -1, math.NaN()} {
		if _, err := s.ChangeMapping(newMapping, store.DenseStoreProvider(), store.DenseStoreProvider(), factor); err == nil {
			t.Errorf("ChangeMapping(factor=%g): want error", factor)
		}
	}
	// Scaling beyond the indexable range must fail loudly.
	_ = s.Add(1e300)
	if _, err := s.ChangeMapping(newMapping, store.DenseStoreProvider(), store.DenseStoreProvider(), 1e300); err == nil {
		t.Error("ChangeMapping overflowing the mapping range: want error")
	}
}

func TestChangeMappingEmptySketch(t *testing.T) {
	s, _ := New(0.01)
	newMapping, _ := mapping.NewCubicallyInterpolated(0.05)
	out, err := s.ChangeMapping(newMapping, store.SparseStoreProvider(), store.SparseStoreProvider(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsEmpty() {
		t.Error("ChangeMapping of empty sketch is not empty")
	}
	if err := out.Add(1); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	// Robustness: any byte soup must produce an error, never a panic.
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %v: %v", data, r)
			}
		}()
		s, err := Decode(data)
		return (s == nil) == (err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncationsOfValidEncoding(t *testing.T) {
	s, _ := NewCollapsing(0.01, 256)
	for i := 1; i <= 1000; i++ {
		_ = s.Add(float64(i))
		_ = s.Add(-float64(i))
	}
	data := s.Encode()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("Decode of %d/%d-byte truncation succeeded", cut, len(data))
		}
	}
	if _, err := Decode(data); err != nil {
		t.Fatalf("Decode of full encoding failed: %v", err)
	}
}

func TestPaperSection22RangeClaim(t *testing.T) {
	// §2.2: "for α = 0.01, a sketch of size 2048 can handle values from
	// 80 microseconds to 1 year and cover all quantiles."
	s, err := NewCollapsing(0.01, 2048)
	if err != nil {
		t.Fatal(err)
	}
	const year = 365.25 * 24 * 3600 // seconds
	const floor = 80e-6
	// Log-spread values across the full claimed range.
	n := 4000
	ratio := math.Pow(year/floor, 1/float64(n-1))
	v := floor
	var values []float64
	for i := 0; i < n; i++ {
		values = append(values, v)
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
		v *= ratio
	}
	if s.Collapsed() {
		t.Fatalf("sketch collapsed within the claimed range (%d bins)", s.NumBins())
	}
	if s.NumBins() > 2048 {
		t.Fatalf("NumBins = %d > 2048", s.NumBins())
	}
	sort.Float64s(values)
	for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
		got, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.Quantile(values, q)
		if exact.RelativeError(got, want) > 0.01*(1+1e-9) {
			t.Errorf("q=%g: rel err %g — 'cover all quantiles' violated", q,
				exact.RelativeError(got, want))
		}
	}
}
