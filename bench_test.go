// Benchmarks regenerating the performance figures of the paper's
// evaluation (§4) with testing.B. Each benchmark family maps to one
// figure; cmd/ddbench prints the same quantities as tables over a sweep
// of N.
//
//	Figure 6 (size):      BenchmarkFig6SketchSize      (bytes via sketch-kB metric)
//	Figure 7 (bins):      BenchmarkFig7NumBins         (bins metric)
//	Figure 8 (add):       BenchmarkFig8Add             (ns/op is the figure's y-axis)
//	Figure 9 (merge):     BenchmarkFig9Merge           (ns/op ÷ 1000 is the figure's µs)
//	Figure 10 (rel err):  BenchmarkFig10RelativeError  (rel-err metric)
//	Figure 11 (rank err): BenchmarkFig11RankError      (rank-err metric)
//
// plus micro-benchmarks for the mapping and serialization trade-offs the
// paper discusses in §2.2/§4.
package ddsketch_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/ddsketch-go/ddsketch"
	"github.com/ddsketch-go/ddsketch/internal/datagen"
	"github.com/ddsketch-go/ddsketch/internal/exact"
	"github.com/ddsketch-go/ddsketch/internal/harness"
	"github.com/ddsketch-go/ddsketch/mapping"
	"github.com/ddsketch-go/ddsketch/store"
)

// benchN keeps a full `go test -bench .` run fast; the ddbench binary
// sweeps N for the paper's full axes.
const benchN = 100_000

var benchDatasets = datagen.Names()

func datasetValues(name string, n int) []float64 {
	return datagen.ByName(name, n)
}

// BenchmarkFig8Add measures the per-Add cost of every sketch on every
// dataset (Figure 8's y-axis is exactly ns/op), plus a batch-ingest
// series over the library's Sketch variants comparing the per-value Add
// path against AddBatch: the plain sketch gains hoisted dispatch, the
// concurrent variants amortize one lock (or one lock per shard chunk,
// or one rotation check) over the whole batch.
func BenchmarkFig8Add(b *testing.B) {
	for _, dataset := range benchDatasets {
		values := datasetValues(dataset, benchN)
		for _, f := range harness.Sketches(dataset) {
			b.Run(fmt.Sprintf("%s/%s", f.Name, dataset), func(b *testing.B) {
				s := f.New()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = s.Add(values[i%len(values)])
				}
			})
		}
	}

	// Batch series: ns/op stays per inserted value, so the perValue and
	// batch sub-benchmarks of each variant are directly comparable. The
	// Uniform rows measure the chunked uniform-collapse batch path
	// against its per-value loop (which pays a bin-budget span check on
	// every insertion): at budget 2048 the span dataset never collapses,
	// at budget 512 it collapses twice early on, so both the steady state
	// and the re-hoisting path are covered.
	const batchSize = 1024
	values := datasetValues("span", benchN)
	maxBins := []ddsketch.Option{ddsketch.WithMaxBins(harness.DDSketchMaxBins)}
	variants := []struct {
		name string
		opts []ddsketch.Option
	}{
		{"DDSketch", maxBins},
		{"Concurrent", append([]ddsketch.Option{ddsketch.WithMutex()}, maxBins...)},
		{"Sharded", append([]ddsketch.Option{ddsketch.WithSharding(0)}, maxBins...)},
		{"TimeWindowed", append([]ddsketch.Option{ddsketch.WithWindow(time.Hour, 4)}, maxBins...)},
		{"WindowedSharded", append([]ddsketch.Option{
			ddsketch.WithSharding(0), ddsketch.WithWindow(time.Hour, 4)}, maxBins...)},
		{"UniformDDSketch", []ddsketch.Option{
			ddsketch.WithUniformCollapse(harness.DDSketchMaxBins)}},
		{"UniformDDSketch512", []ddsketch.Option{ddsketch.WithUniformCollapse(512)}},
	}
	newVariant := func(b *testing.B, opts []ddsketch.Option) ddsketch.Sketch {
		b.Helper()
		s, err := ddsketch.NewSketch(append([]ddsketch.Option{
			ddsketch.WithRelativeAccuracy(harness.DDSketchAlpha),
		}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	for _, v := range variants {
		b.Run(v.name+"/span/perValue", func(b *testing.B) {
			s := newVariant(b, v.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Add(values[i%len(values)])
			}
		})
		b.Run(v.name+"/span/batch", func(b *testing.B) {
			s := newVariant(b, v.opts)
			b.ResetTimer()
			for done := 0; done < b.N; done += batchSize {
				n := batchSize
				if rem := b.N - done; rem < n {
					n = rem
				}
				_ = s.AddBatch(values[done%(len(values)-batchSize) : done%(len(values)-batchSize)+n])
			}
		})
	}
}

// BenchmarkFig9Merge measures the cost of merging two sketches holding
// benchN/2 values each (Figure 9's y-axis is ns/op ÷ 1000).
func BenchmarkFig9Merge(b *testing.B) {
	for _, dataset := range benchDatasets {
		values := datasetValues(dataset, benchN)
		for _, f := range harness.Sketches(dataset) {
			b.Run(fmt.Sprintf("%s/%s", f.Name, dataset), func(b *testing.B) {
				src, _ := harness.Fill(f, values[benchN/2:])
				dst, _ := harness.Fill(f, values[:benchN/2])
				b.ResetTimer()
				// Steady-state merge: repeatedly folding the same source in
				// only increases counts, so per-merge cost is stable and no
				// per-iteration rebuild is needed.
				for i := 0; i < b.N; i++ {
					if err := dst.MergeWith(src); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6SketchSize reports each sketch's memory footprint after
// absorbing benchN values (Figure 6's y-axis, as the sketch-kB metric).
func BenchmarkFig6SketchSize(b *testing.B) {
	for _, dataset := range benchDatasets {
		values := datasetValues(dataset, benchN)
		for _, f := range harness.Sketches(dataset) {
			b.Run(fmt.Sprintf("%s/%s", f.Name, dataset), func(b *testing.B) {
				var size int
				for i := 0; i < b.N; i++ {
					s, _ := harness.Fill(f, values)
					size = s.SizeBytes()
				}
				b.ReportMetric(float64(size)/1000, "sketch-kB")
			})
		}
	}
}

// BenchmarkFig7NumBins reports the bins used by DDSketch on the pareto
// dataset (Figure 7's y-axis, as the bins metric).
func BenchmarkFig7NumBins(b *testing.B) {
	values := datasetValues("pareto", benchN)
	var bins int
	for i := 0; i < b.N; i++ {
		s, err := ddsketch.NewCollapsing(harness.DDSketchAlpha, harness.DDSketchMaxBins)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range values {
			_ = s.Add(v)
		}
		bins = s.NumBins()
	}
	b.ReportMetric(float64(bins), "bins")
}

// benchAccuracy reports an error metric per sketch/dataset/quantile.
func benchAccuracy(b *testing.B, metric string,
	errFn func(sorted []float64, est float64, q float64) float64) {
	for _, dataset := range benchDatasets {
		values := datasetValues(dataset, benchN)
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		for _, f := range harness.Sketches(dataset) {
			s, _ := harness.Fill(f, values)
			for _, q := range []float64{0.5, 0.95, 0.99} {
				b.Run(fmt.Sprintf("%s/%s/p%g", f.Name, dataset, q*100), func(b *testing.B) {
					var e float64
					for i := 0; i < b.N; i++ {
						est, err := s.Quantile(q)
						if err != nil {
							b.Fatal(err)
						}
						e = errFn(sorted, est, q)
					}
					b.ReportMetric(e, metric)
				})
			}
		}
	}
}

// BenchmarkFig10RelativeError reports the relative error of each
// sketch's quantile estimates (Figure 10's y-axis, as the rel-err
// metric; ns/op is the query latency).
func BenchmarkFig10RelativeError(b *testing.B) {
	benchAccuracy(b, "rel-err", func(sorted []float64, est float64, q float64) float64 {
		return exact.RelativeError(est, exact.Quantile(sorted, q))
	})
}

// BenchmarkFig11RankError reports the rank error of each sketch's
// quantile estimates (Figure 11's y-axis, as the rank-err metric).
func BenchmarkFig11RankError(b *testing.B) {
	benchAccuracy(b, "rank-err", func(sorted []float64, est float64, q float64) float64 {
		return exact.RankError(sorted, est, q)
	})
}

// BenchmarkMappingIndex isolates the §2.2 mapping trade-off: the cost of
// computing a bucket index with the exact logarithm vs. the interpolated
// approximations behind "DDSketch (fast)".
func BenchmarkMappingIndex(b *testing.B) {
	mappings := []struct {
		name string
		new  func(float64) (mapping.IndexMapping, error)
	}{
		{"Logarithmic", func(a float64) (mapping.IndexMapping, error) { return mapping.NewLogarithmic(a) }},
		{"LinearlyInterpolated", func(a float64) (mapping.IndexMapping, error) { return mapping.NewLinearlyInterpolated(a) }},
		{"QuadraticallyInterpolated", func(a float64) (mapping.IndexMapping, error) { return mapping.NewQuadraticallyInterpolated(a) }},
		{"CubicallyInterpolated", func(a float64) (mapping.IndexMapping, error) { return mapping.NewCubicallyInterpolated(a) }},
	}
	values := datasetValues("span", 4096)
	for _, m := range mappings {
		im, err := m.new(0.01)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.name, func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += im.Index(values[i&4095])
			}
			_ = sink
		})
	}
}

// BenchmarkStoreAdd isolates the §2.2 store trade-off: insertion cost of
// the dense, collapsing, sparse, and paginated layouts.
func BenchmarkStoreAdd(b *testing.B) {
	stores := []struct {
		name string
		new  func() store.Store
	}{
		{"Dense", func() store.Store { return store.NewDenseStore() }},
		{"CollapsingLowest", func() store.Store { return store.NewCollapsingLowestDenseStore(2048) }},
		{"Sparse", func() store.Store { return store.NewSparseStore() }},
		{"BufferedPaginated", func() store.Store { return store.NewBufferedPaginatedStore() }},
	}
	m, err := mapping.NewLogarithmic(0.01)
	if err != nil {
		b.Fatal(err)
	}
	values := datasetValues("span", 4096)
	indexes := make([]int, len(values))
	for i, v := range values {
		indexes[i] = m.Index(v)
	}
	for _, sc := range stores {
		b.Run(sc.name, func(b *testing.B) {
			s := sc.new()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(indexes[i&4095])
			}
		})
	}
}

// BenchmarkQuantileQuery measures the query-side cost (not plotted in
// the paper but relevant for serving dashboards: queries walk the
// buckets).
func BenchmarkQuantileQuery(b *testing.B) {
	for _, dataset := range benchDatasets {
		values := datasetValues(dataset, benchN)
		for _, f := range harness.Sketches(dataset) {
			s, _ := harness.Fill(f, values)
			// Prime any solver caches so the steady-state cost is measured.
			if _, err := s.Quantile(0.5); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", f.Name, dataset), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := s.Quantile(0.99); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkConcurrentAdd measures parallel insertion throughput through
// the single-mutex Concurrent wrapper: every Add serializes on one lock,
// so adding writers adds contention, not throughput. Run with
// -cpu 1,4,8 to see the collapse; BenchmarkShardedAdd is the fix.
func BenchmarkConcurrentAdd(b *testing.B) {
	values := datasetValues("span", 4096)
	s, err := ddsketch.NewCollapsing(harness.DDSketchAlpha, harness.DDSketchMaxBins)
	if err != nil {
		b.Fatal(err)
	}
	c := ddsketch.NewConcurrent(s)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			_ = c.Add(values[i&4095])
			i++
		}
	})
}

// BenchmarkShardedAdd measures parallel insertion throughput through the
// sharded sketch: writers land on independently-locked shards, so
// parallel writers proceed mostly without contending. Compare against
// BenchmarkConcurrentAdd under -cpu 1,4,8.
func BenchmarkShardedAdd(b *testing.B) {
	values := datasetValues("span", 4096)
	proto, err := ddsketch.NewCollapsing(harness.DDSketchAlpha, harness.DDSketchMaxBins)
	if err != nil {
		b.Fatal(err)
	}
	s := ddsketch.NewSharded(proto, 0)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			_ = s.Add(values[i&4095])
			i++
		}
	})
}

// BenchmarkShardedQuantile measures the price of merge-on-read: a
// quantile query against a sharded sketch merges all shards first.
func BenchmarkShardedQuantile(b *testing.B) {
	values := datasetValues("span", benchN)
	proto, err := ddsketch.NewCollapsing(harness.DDSketchAlpha, harness.DDSketchMaxBins)
	if err != nil {
		b.Fatal(err)
	}
	s := ddsketch.NewSharded(proto, 0)
	for _, v := range values {
		_ = s.Add(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Quantile(0.99); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedSummary documents the merge-once win of the Summary
// API: reading count, sum, min, max, avg, and three quantiles off a
// sharded sketch costs one shard-merge pass via Summary, but one merge
// pass *per quantile* via naive independent query calls.
func BenchmarkShardedSummary(b *testing.B) {
	values := datasetValues("span", benchN)
	proto, err := ddsketch.NewCollapsing(harness.DDSketchAlpha, harness.DDSketchMaxBins)
	if err != nil {
		b.Fatal(err)
	}
	s := ddsketch.NewSharded(proto, 0)
	for _, v := range values {
		_ = s.Add(v)
	}
	qs := []float64{0.5, 0.95, 0.99}

	b.Run("Summary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Summary(qs...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaivePerQueryReads", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				if _, err := s.Quantile(q); err != nil {
					b.Fatal(err)
				}
			}
			for _, query := range []func() (float64, error){s.Sum, s.Min, s.Max, s.Avg} {
				if _, err := query(); err != nil {
					b.Fatal(err)
				}
			}
			_ = s.Count()
		}
	})
}

// BenchmarkEncode measures sketch serialization, the per-flush cost of
// the agent workflow in the paper's introduction.
func BenchmarkEncode(b *testing.B) {
	values := datasetValues("span", benchN)
	s, err := ddsketch.NewCollapsing(harness.DDSketchAlpha, harness.DDSketchMaxBins)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range values {
		_ = s.Add(v)
	}
	data := s.Encode()
	b.Run("Encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			data = s.Encode()
		}
		b.SetBytes(int64(len(data)))
	})
	b.Run("Decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ddsketch.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(data)))
	})
	b.Run("DecodeAndMergeWith", func(b *testing.B) {
		dst, err := ddsketch.NewCollapsing(harness.DDSketchAlpha, harness.DDSketchMaxBins)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if err := dst.DecodeAndMergeWith(data); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(data)))
	})
}
